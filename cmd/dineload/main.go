// Command dineload is a concurrent load generator for dineserve: it opens
// -clients TCP connections, and each client loops acquire → hold → release
// against a randomly chosen diner until -duration elapses. It reports
// sessions completed, throughput, and acquire-latency percentiles (request
// sent → grant received), and optionally counts events on the ◇P suspect
// stream over a separate watch connection.
//
// Exit status is non-zero if any client saw a protocol error or if no
// session completed at all, so scripted smoke tests can assert on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockproto"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7117", "dineserve address")
		clients  = flag.Int("clients", 64, "concurrent client connections")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		hold     = flag.Duration("hold", 2*time.Millisecond, "how long each session holds the lock")
		opTO     = flag.Duration("op-timeout", 15*time.Second, "per-reply read deadline")
		watch    = flag.Bool("watch", true, "also stream ◇P suspect events on a side connection")
	)
	flag.Parse()

	diners, err := probe(*addr, *opTO)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dineload: cannot reach server: %v\n", err)
		os.Exit(1)
	}

	var suspectEvents atomic.Int64
	watchDone := make(chan struct{})
	if *watch {
		go watchSuspects(*addr, &suspectEvents, watchDone)
	} else {
		close(watchDone)
	}

	deadline := time.Now().Add(*duration)
	results := make([]clientResult, *clients)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runClient(i, *addr, diners, deadline, *hold, *opTO)
		}(i)
	}
	wg.Wait()
	close(watchDone)

	var lats []time.Duration
	sessions, errs := 0, 0
	for _, res := range results {
		sessions += res.sessions
		errs += res.errors
		lats = append(lats, res.latencies...)
	}
	elapsed := *duration
	fmt.Printf("dineload: %d clients for %v against %s (%d diners)\n", *clients, *duration, *addr, diners)
	fmt.Printf("dineload: %d sessions, %.1f/s, errors: %d\n", sessions, float64(sessions)/elapsed.Seconds(), errs)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("dineload: acquire latency p50=%v p95=%v p99=%v max=%v\n",
			pct(lats, 50), pct(lats, 95), pct(lats, 99), lats[len(lats)-1])
	}
	if *watch {
		fmt.Printf("dineload: suspect-stream events: %d\n", suspectEvents.Load())
	}
	if errs > 0 || sessions == 0 {
		os.Exit(1)
	}
}

// pct picks the p-th percentile of a sorted latency slice.
func pct(sorted []time.Duration, p int) time.Duration {
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(10 * time.Microsecond)
}

// probe asks the server for its diner count.
func probe(addr string, timeout time.Duration) (int, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(c).Encode(lockproto.Request{Op: lockproto.OpInfo}); err != nil {
		return 0, err
	}
	var ev lockproto.Event
	if err := json.NewDecoder(c).Decode(&ev); err != nil {
		return 0, err
	}
	if ev.Ev != lockproto.EvInfo || ev.Diners < 1 {
		return 0, fmt.Errorf("unexpected info reply %+v", ev)
	}
	return ev.Diners, nil
}

// watchSuspects counts suspect-stream events until done closes.
func watchSuspects(addr string, n *atomic.Int64, done <-chan struct{}) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer c.Close()
	go func() {
		<-done
		c.Close() // unblocks the decoder
	}()
	if err := json.NewEncoder(c).Encode(lockproto.Request{Op: lockproto.OpWatch}); err != nil {
		return
	}
	dec := json.NewDecoder(c)
	for {
		var ev lockproto.Event
		if err := dec.Decode(&ev); err != nil {
			return
		}
		if ev.Ev == lockproto.EvSuspect {
			n.Add(1)
		}
	}
}

type clientResult struct {
	sessions  int
	errors    int
	latencies []time.Duration
}

// runClient loops acquire/hold/release on one connection until the deadline.
// Replies to this connection's requests arrive in order, so a simple
// decode-next loop per operation suffices.
func runClient(id int, addr string, diners int, deadline time.Time, hold, opTO time.Duration) clientResult {
	var res clientResult
	c, err := net.Dial("tcp", addr)
	if err != nil {
		res.errors++
		return res
	}
	defer c.Close()
	enc, dec := json.NewEncoder(c), json.NewDecoder(c)
	rng := rand.New(rand.NewSource(int64(id)*7919 + 1))

	await := func(want, id string) bool {
		c.SetReadDeadline(time.Now().Add(opTO))
		for {
			var ev lockproto.Event
			if err := dec.Decode(&ev); err != nil {
				res.errors++
				return false
			}
			if ev.Ev == lockproto.EvError {
				// A drain refusal while the run winds down is expected; any
				// other error counts against the run.
				if ev.Msg != "draining" {
					res.errors++
				}
				return false
			}
			if ev.Ev == want && ev.ID == id {
				return true
			}
		}
	}

	for seq := 0; time.Now().Before(deadline); seq++ {
		diner := rng.Intn(diners)
		sid := fmt.Sprintf("c%d-%d", id, seq)
		start := time.Now()
		if err := enc.Encode(lockproto.Request{Op: lockproto.OpAcquire, Diner: diner, ID: sid}); err != nil {
			res.errors++
			return res
		}
		if !await(lockproto.EvGranted, sid) {
			return res
		}
		res.latencies = append(res.latencies, time.Since(start))
		time.Sleep(hold)
		if err := enc.Encode(lockproto.Request{Op: lockproto.OpRelease, Diner: diner, ID: sid}); err != nil {
			res.errors++
			return res
		}
		if !await(lockproto.EvReleased, sid) {
			return res
		}
		res.sessions++
	}
	return res
}
