// Command dineload is a concurrent load generator for dineserve: it opens
// -clients TCP connections, and each client loops acquire → hold → release
// against a randomly chosen diner until -duration elapses. It reports
// sessions completed, throughput, and acquire-latency percentiles (request
// sent → grant received), and optionally counts events on the ◇P suspect
// stream over a separate watch connection.
//
// Exit status is non-zero if any client saw a protocol error or if no
// session completed at all, so scripted smoke tests can assert on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockproto"
	"repro/internal/metrics"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7117", "dineserve address")
		clients  = flag.Int("clients", 64, "concurrent client connections")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		hold     = flag.Duration("hold", 2*time.Millisecond, "how long each session holds the lock")
		opTO     = flag.Duration("op-timeout", 15*time.Second, "per-reply read deadline")
		watch    = flag.Bool("watch", true, "also stream ◇P suspect events on a side connection")
		bench    = flag.Bool("bench", false, "also emit results as one go-test benchmark line (for bench2json)")
		scrape   = flag.String("scrape", "", "dineserve -metrics base URL (e.g. http://127.0.0.1:9117): scrape /statusz mid-run and report the server-side grant latency next to the client-side numbers")
	)
	flag.Parse()

	diners, tables, err := probe(*addr, *opTO)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dineload: cannot reach server: %v\n", err)
		os.Exit(1)
	}

	var suspectEvents atomic.Int64
	watchDone := make(chan struct{})
	if *watch {
		go watchSuspects(*addr, &suspectEvents, watchDone)
	}

	// Session ids must be unique per load-generator *process*, not just per
	// client goroutine: the server's session registry is keyed (diner, id),
	// and two concurrent dineloads reusing "c0-0" would collide on each
	// other's sessions and tombstones.
	prefix := fmt.Sprintf("%06x", rand.New(rand.NewSource(time.Now().UnixNano()+int64(os.Getpid())<<20)).Intn(1<<24))

	// The mid-run scrape fires at half duration — the load is in steady
	// state, so the server's histogram and the clients' agree on what the
	// same grants cost from each side.
	scrapeCh := make(chan *metrics.Snapshot, 1)
	if *scrape != "" {
		go func() {
			time.Sleep(*duration / 2)
			snap, err := scrapeStatusz(*scrape, *opTO)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dineload: scrape: %v\n", err)
			}
			scrapeCh <- snap // nil on error: reported once at the end
		}()
	}

	deadline := time.Now().Add(*duration)
	results := make([]clientResult, *clients)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runClient(prefix, i, *addr, diners, tables, deadline, *hold, *opTO)
		}(i)
	}
	wg.Wait()
	close(watchDone)

	lat := metrics.NewHist()
	sessions, errs, reconns, abandoned, dblGrants := 0, 0, 0, 0, 0
	perTable := make([]int, tables)
	for i := range results {
		res := &results[i]
		sessions += res.sessions
		errs += res.errors
		reconns += res.reconnects
		abandoned += res.abandoned
		dblGrants += res.doubleGrants
		for t, n := range res.perTable {
			perTable[t] += n
		}
		lat.Merge(res.lat)
	}
	elapsed := *duration
	rate := float64(sessions) / elapsed.Seconds()
	if tables > 1 {
		fmt.Printf("dineload: %d clients for %v against %s (%d diners over %d tables)\n", *clients, *duration, *addr, diners, tables)
	} else {
		fmt.Printf("dineload: %d clients for %v against %s (%d diners)\n", *clients, *duration, *addr, diners)
	}
	fmt.Printf("dineload: %d sessions, %.1f/s, errors: %d, reconnects: %d, abandoned: %d, double-grants: %d\n",
		sessions, rate, errs, reconns, abandoned, dblGrants)
	if tables > 1 {
		// Per-table completion counts, derived client-side from the same
		// pinned hash the server routes with — a table sitting at zero here
		// means its shard served nothing, however healthy the total looks.
		line := "dineload: sessions per table:"
		for t, n := range perTable {
			line += fmt.Sprintf(" table-%d=%d", t, n)
		}
		fmt.Println(line)
	}
	if lat.Count() > 0 {
		fmt.Printf("dineload: acquire latency p50=%v p95=%v p99=%v max=%v\n",
			lat.PctDuration(50), lat.PctDuration(95), lat.PctDuration(99), lat.MaxDuration())
	}
	if *scrape != "" {
		if snap := <-scrapeCh; snap != nil {
			// The server observes acquire-received → grant-sent; the client
			// observes request-sent → grant-received. The gap between the two
			// is the wire plus the client's own scheduling. A sharded server
			// exposes one labeled histogram per table under the same base
			// name, so match by prefix and report each series.
			const histBase = "dineserve_grant_latency_seconds"
			var names []string
			for name := range snap.Hists {
				if name == histBase || strings.HasPrefix(name, histBase+"{") {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			if len(names) == 0 {
				fmt.Fprintln(os.Stderr, "dineload: scrape: server exposes no "+histBase)
			} else {
				sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
				if len(names) == 1 {
					hs := snap.Hists[names[0]]
					fmt.Printf("dineload: server-side grant latency (mid-run, %d grants) p50=%v p95=%v p99=%v max=%v\n",
						hs.Count, sec(hs.P50), sec(hs.P95), sec(hs.P99), sec(hs.Max))
					if lat.Count() > 0 && hs.Count > 0 {
						fmt.Printf("dineload: client-vs-server p50 gap: %v (wire + client scheduling)\n",
							lat.PctDuration(50)-sec(hs.P50))
					}
				} else {
					var total int64
					for _, name := range names {
						total += snap.Hists[name].Count
					}
					fmt.Printf("dineload: server-side grant latency (mid-run, %d grants over %d tables):\n", total, len(names))
					for _, name := range names {
						hs := snap.Hists[name]
						fmt.Printf("dineload:   %s p50=%v p95=%v p99=%v max=%v (%d grants)\n",
							name[len(histBase):], sec(hs.P50), sec(hs.P95), sec(hs.P99), sec(hs.Max), hs.Count)
					}
				}
			}
		}
	}
	if *watch {
		fmt.Printf("dineload: suspect-stream events: %d\n", suspectEvents.Load())
	}
	if *bench && sessions > 0 {
		// One go-test-format benchmark line so cmd/bench2json can fold the
		// end-to-end load run into the same document as the micro-benchmarks.
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		fmt.Printf("BenchmarkServeLoad %d %.1f sessions/s %.3f ms-p50 %.3f ms-p95 %.3f ms-p99 %.3f ms-max\n",
			sessions, rate, ms(lat.PctDuration(50)), ms(lat.PctDuration(95)), ms(lat.PctDuration(99)), ms(lat.MaxDuration()))
	}
	if errs > 0 || sessions == 0 {
		os.Exit(1)
	}
}

// scrapeStatusz fetches the server's JSON metrics snapshot.
func scrapeStatusz(base string, timeout time.Duration) (*metrics.Snapshot, error) {
	cli := &http.Client{Timeout: timeout}
	resp, err := cli.Get(base + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /statusz: %s", resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// probe asks the server for its diner and table counts. A pre-sharding
// server omits the tables field; treat that as one table.
func probe(addr string, timeout time.Duration) (int, int, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	if err := lockproto.WriteRequest(c, &lockproto.Request{Op: lockproto.OpInfo}); err != nil {
		return 0, 0, err
	}
	var ev lockproto.Event
	if err := lockproto.NewEventReader(c).Read(&ev); err != nil {
		return 0, 0, err
	}
	if ev.Ev != lockproto.EvInfo || ev.Diners < 1 {
		return 0, 0, fmt.Errorf("unexpected info reply %+v", ev)
	}
	tables := ev.Tables
	if tables < 1 {
		tables = 1
	}
	return ev.Diners, tables, nil
}

// watchSuspects counts suspect-stream events until done closes.
func watchSuspects(addr string, n *atomic.Int64, done <-chan struct{}) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer c.Close()
	go func() {
		<-done
		c.Close() // unblocks the decoder
	}()
	if err := lockproto.WriteRequest(c, &lockproto.Request{Op: lockproto.OpWatch}); err != nil {
		return
	}
	er := lockproto.NewEventReader(c)
	for {
		var ev lockproto.Event
		if err := er.Read(&ev); err != nil {
			return
		}
		if ev.Ev == lockproto.EvSuspect {
			n.Add(1)
		}
	}
}

type clientResult struct {
	sessions   int
	perTable   []int // sessions per server table (lockproto.TableOf of the diner)
	errors     int
	reconnects int
	abandoned  int // sessions lost to lease expiry while disconnected
	// doubleGrants counts EvGranted events for a session this client had
	// already finished — the client-visible form of a broken
	// no-double-grant guarantee (e.g. a server that forgot a release across
	// a crash). Always a protocol error.
	doubleGrants int
	lat          *metrics.Hist // acquire latency (request sent → grant received)
}

// exchange outcomes.
type xResult int

const (
	xOK      xResult = iota
	xAbandon         // give this session up, move on to the next id
	xStop            // the run is over (deadline, drain, or unreachable)
)

// client is a self-healing dineload connection: every dial or read failure
// triggers a reconnect with capped exponential backoff, after which the
// in-flight request is replayed under the same session id — the server's
// idempotent session registry (internal/lockproto.Sessions) makes the replay
// safe, so a connection reset mid-run costs a retry, never a wrong result.
type client struct {
	addr     string
	deadline time.Time
	opTO     time.Duration

	conn net.Conn
	er   *lockproto.EventReader
	res  clientResult
	// done holds every session this client has finished with (released, or
	// reclaimed by the server), keyed exactly as the server's registry keys
	// them: (diner, id). A grant arriving for one of them can only mean the
	// server re-entered a dead session's critical section — and on a sharded
	// server two tables could legitimately run same-named ids for different
	// diners, so the id alone is not identity.
	done map[lockproto.Key]bool
}

// reconnect (re)establishes the connection, backing off 50ms→2s between
// attempts until the run deadline. Returns false when the deadline passes
// first.
func (cl *client) reconnect() bool {
	first := cl.conn == nil
	if cl.conn != nil {
		cl.conn.Close()
		cl.conn = nil
	}
	backoff := 50 * time.Millisecond
	for time.Now().Before(cl.deadline) {
		c, err := net.DialTimeout("tcp", cl.addr, cl.opTO)
		if err == nil {
			cl.conn, cl.er = c, lockproto.NewEventReader(c)
			if !first {
				cl.res.reconnects++
			}
			return true
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return false
}

// exchange sends req and waits for wantEv with a matching id, reconnecting
// and replaying on any transport error.
func (cl *client) exchange(req lockproto.Request, wantEv string) xResult {
	for {
		if cl.conn == nil && !cl.reconnect() {
			return xStop
		}
		if err := lockproto.WriteRequest(cl.conn, &req); err != nil {
			if !cl.reconnect() {
				return xStop
			}
			continue // replay on the fresh connection
		}
		cl.conn.SetReadDeadline(time.Now().Add(cl.opTO))
		for {
			var ev lockproto.Event
			if err := cl.er.Read(&ev); err != nil {
				if !cl.reconnect() {
					return xStop
				}
				break // replay
			}
			if ev.Ev == lockproto.EvGranted && cl.done[lockproto.Key{Diner: ev.Diner, ID: ev.ID}] {
				cl.res.doubleGrants++
				cl.res.errors++
			}
			if ev.Ev == lockproto.EvError && ev.ID == req.ID {
				switch ev.Msg {
				case "draining":
					// Expected while the run winds down.
					return xStop
				case "overloaded", "busy":
					// Graceful shedding: back off and replay the same id.
					time.Sleep(100 * time.Millisecond)
				case "session expired", "unknown session":
					// We were away past the lease; the server reclaimed the
					// session. Not a protocol error — start a fresh id.
					cl.res.abandoned++
					return xAbandon
				default:
					cl.res.errors++
					return xAbandon
				}
				break // resend
			}
			if ev.Ev == wantEv && ev.ID == req.ID {
				return xOK
			}
			// Unrelated event (e.g. a replayed ack for an earlier id): skip.
		}
	}
}

// runClient loops acquire → hold → release until the deadline, surviving
// connection resets: a single dial or read error no longer ends the client.
func runClient(prefix string, id int, addr string, diners, tables int, deadline time.Time, hold, opTO time.Duration) clientResult {
	cl := &client{addr: addr, deadline: deadline, opTO: opTO, done: make(map[lockproto.Key]bool)}
	cl.res.lat = metrics.NewHist()
	cl.res.perTable = make([]int, tables)
	defer func() {
		if cl.conn != nil {
			cl.conn.Close()
		}
	}()
	rng := rand.New(rand.NewSource(int64(id)*7919 + 1))

	for seq := 0; time.Now().Before(deadline); seq++ {
		diner := rng.Intn(diners)
		key := lockproto.Key{Diner: diner, ID: fmt.Sprintf("%s-c%d-%d", prefix, id, seq)}
		start := time.Now()
		switch cl.exchange(lockproto.Request{Op: lockproto.OpAcquire, Diner: diner, ID: key.ID}, lockproto.EvGranted) {
		case xStop:
			return cl.res
		case xAbandon:
			cl.done[key] = true // server reclaimed it: any later grant is bogus
			continue
		}
		cl.res.lat.ObserveDuration(time.Since(start))
		time.Sleep(hold)
		rel := cl.exchange(lockproto.Request{Op: lockproto.OpRelease, Diner: diner, ID: key.ID}, lockproto.EvReleased)
		cl.done[key] = true
		switch rel {
		case xStop:
			return cl.res
		case xAbandon:
			continue
		}
		cl.res.sessions++
		cl.res.perTable[lockproto.TableOf(diner, tables)]++
	}
	return cl.res
}
