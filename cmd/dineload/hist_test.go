package main

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestLatHistPercentiles checks the histogram's percentiles against exact
// order statistics on a log-uniform sample: each reported percentile must
// be ≥ the true one (buckets report upper bounds) and within one sub-bucket
// width (25%) of it, and the max must be exact.
func TestLatHistPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h latHist
	var exact []time.Duration
	for i := 0; i < 20000; i++ {
		us := 1 << uint(rng.Intn(20)) // 1µs..~1s octaves
		d := time.Duration(us+rng.Intn(us)) * time.Microsecond
		h.add(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{50, 95, 99} {
		got := h.pct(p)
		want := exact[int(p/100*float64(len(exact)))]
		if got < want {
			t.Errorf("p%.0f: histogram %v under exact %v", p, got, want)
		}
		if float64(got) > float64(want)*1.25+float64(time.Microsecond) {
			t.Errorf("p%.0f: histogram %v over exact %v by more than a sub-bucket", p, got, want)
		}
	}
	if h.pct(100) != exact[len(exact)-1] || h.max != exact[len(exact)-1] {
		t.Errorf("max: got %v/%v want %v", h.pct(100), h.max, exact[len(exact)-1])
	}
}

// TestLatHistMerge: merging per-client histograms must equal one histogram
// fed every sample.
func TestLatHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var whole latHist
	parts := make([]latHist, 4)
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1e6)) * time.Microsecond
		whole.add(d)
		parts[i%4].add(d)
	}
	var merged latHist
	for i := range parts {
		merged.merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merge diverged from the single-histogram run")
	}
}

// TestLatHistEdges pins the degenerate inputs: zero samples, zero duration,
// and a value past the last octave must all stay in range.
func TestLatHistEdges(t *testing.T) {
	var h latHist
	if h.pct(50) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	h.add(0)
	h.add(300 * time.Hour) // beyond the last bucket: clamps, max still exact
	if h.pct(100) != 300*time.Hour {
		t.Fatalf("max lost: %v", h.pct(100))
	}
	if got := h.pct(0); got <= 0 || got > 2*time.Microsecond {
		t.Fatalf("p0 of a 0s sample: %v", got)
	}
}
