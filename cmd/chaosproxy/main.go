// Command chaosproxy is a standalone fault-injecting TCP proxy for
// line-oriented protocols — put it in front of dineserve and point dineload
// at it to subject the client/server path to the same declarative link
// faults the simulator and the live-runtime chaos bus use. The -plan file is
// a chaos.LinkSpec JSON (drop/dup/reorder plus timed partition windows)
// interpreted over the two-node link client=0, server=1; the identical file
// drives `chaos -live -liveplan`. Faults are line-aware: frames are delayed,
// dropped, or duplicated whole, never corrupted.
//
// The fault schedule is derived from -seed alone, so two proxies with the
// same plan, seed, and traffic make the same per-line decisions.
//
//	chaosproxy -listen 127.0.0.1:7017 -upstream 127.0.0.1:7117 \
//	    -plan plan.json -seed 7 -reset 0.001
//
// On SIGINT the proxy reports its fault counters and exits 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/livechaos"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to accept client connections on")
		upstream = flag.String("upstream", "", "server address to relay to (required)")
		planFile = flag.String("plan", "", "chaos.LinkSpec JSON file (empty: no link faults)")
		seed     = flag.Int64("seed", 1, "fault-schedule seed")
		tick     = flag.Duration("tick", time.Millisecond, "wall-clock duration of one plan tick")
		reset    = flag.Float64("reset", 0, "per-line connection-reset probability, [0, 1)")
		maxLine  = flag.Int("max-line", 1<<20, "maximum relayed line length in bytes")
	)
	flag.Parse()
	if *upstream == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -upstream is required")
		os.Exit(2)
	}

	var links *chaos.LinkSpec
	if *planFile != "" {
		raw, err := os.ReadFile(*planFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosproxy:", err)
			os.Exit(2)
		}
		links = &chaos.LinkSpec{}
		if err := json.Unmarshal(raw, links); err != nil {
			fmt.Fprintf(os.Stderr, "chaosproxy: bad -plan %s: %v\n", *planFile, err)
			os.Exit(2)
		}
	}

	p, err := livechaos.NewProxy(livechaos.ProxyConfig{
		Listen:    *listen,
		Upstream:  *upstream,
		Plan:      links.Plan(),
		Seed:      *seed,
		Tick:      *tick,
		ResetProb: *reset,
		MaxLine:   *maxLine,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		os.Exit(1)
	}
	fmt.Printf("chaosproxy: listening on %s -> %s (plan %s, seed %d)\n",
		p.Addr(), *upstream, links.String(), *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	dropped, duped, resets := p.Stats()
	p.Close()
	fmt.Printf("chaosproxy: dropped=%d duped=%d resets=%d\n", dropped, duped, resets)
}
