// Command extract runs the paper's reduction: it builds a black-box dining
// service, extracts a failure detector from it with the witness/subject
// construction, and reports the extracted oracle's quality (mistakes,
// convergence, detection latency) plus the Figure-1 style timeline of one
// monitored pair.
//
// Usage:
//
//	extract -n 3 -box forks -crash 2@6000 -horizon 50000
//
// Boxes: forks (WF-◇WX → extracts ◇P), trap (adversarial WF-◇WX → still
// extracts ◇P), mutex|central (wait-free ℙWX → extracts T, Section 9).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/perfect"
	"repro/internal/dining/trap"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 2, "number of monitored processes")
		box     = flag.String("box", "forks", "forks|trap|mutex|central")
		seed    = flag.Int64("seed", 1, "random seed")
		horizon = flag.Int64("horizon", 50000, "virtual-time horizon")
		gst     = flag.Int64("gst", 800, "GST of the delay policy")
		crashes = flag.String("crash", "", "comma list of proc@time")
		era     = flag.Int64("era", 3000, "mistake era for the trap box")
	)
	flag.Parse()
	if *n < 2 {
		fmt.Fprintln(os.Stderr, "extract: need at least 2 processes")
		os.Exit(2)
	}

	// Reserve coordinator processes for the centralized boxes.
	coordCount := 0
	if *box == "trap" || *box == "central" {
		coordCount = 2
	}
	log := &trace.Log{}
	k := sim.NewKernel(*n+coordCount,
		sim.WithSeed(*seed),
		sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: sim.Time(*gst), PreMax: 120, PostMax: 8}),
	)
	var coords []sim.ProcID
	for i := 0; i < coordCount; i++ {
		coords = append(coords, sim.ProcID(*n+i))
	}

	var factory dining.Factory
	class := "◇P"
	switch *box {
	case "forks":
		oracle := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		factory = forks.Factory(oracle, forks.Config{})
	case "trap":
		factory = trap.Factory(coords, sim.Time(*era))
	case "mutex":
		// Model-true stand-in for the T+S composition the FTME needs.
		factory = mutex.Factory(detector.Perfect{K: k})
		class = "T"
	case "central":
		factory = perfect.Factory(coords)
		class = "T"
	default:
		fmt.Fprintf(os.Stderr, "extract: unknown box %q\n", *box)
		os.Exit(2)
	}

	procs := make([]sim.ProcID, *n)
	for i := range procs {
		procs[i] = sim.ProcID(i)
	}
	ext := core.NewExtractor(k, procs, factory, "x")

	for _, spec := range strings.Split(*crashes, ",") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		parts := strings.SplitN(spec, "@", 2)
		p, err1 := strconv.Atoi(parts[0])
		at, err2 := strconv.ParseInt(parts[1], 10, 64)
		if len(parts) != 2 || err1 != nil || err2 != nil || p < 0 || p >= *n {
			fmt.Fprintf(os.Stderr, "extract: bad crash spec %q\n", spec)
			os.Exit(2)
		}
		k.CrashAt(sim.ProcID(p), sim.Time(at))
	}

	end := k.Run(sim.Time(*horizon))

	fmt.Printf("extraction: box=%s class=%s n=%d seed=%d end=%d\n\n", *box, class, *n, *seed, end)
	fmt.Println("pair   final     mistakes  ")
	for _, p := range procs {
		for _, q := range procs {
			if p == q {
				continue
			}
			out := "trusts  "
			if ext.Suspected(p, q) {
				out = "suspects"
			}
			fmt.Printf("%d->%d   %s  %d\n", p, q, out, checker.MistakeCount(log, "x", p, q, true))
		}
	}

	// Any failed property check flips the exit status to non-zero, so scripted
	// extractions can gate on the oracle's class contract.
	failed := false
	pairs := checker.AllPairs(procs)
	fmt.Println()
	if class == "T" {
		if _, err := checker.TrustingAccuracy(log, "x", pairs, true, end*3/4); err != nil {
			fmt.Println("trusting accuracy: FAIL:", err)
			failed = true
		} else {
			fmt.Println("trusting accuracy: ok")
		}
	} else {
		if _, err := checker.EventualStrongAccuracy(log, "x", pairs, true, end*3/4); err != nil {
			fmt.Println("eventual strong accuracy: FAIL:", err)
			failed = true
		} else {
			fmt.Println("eventual strong accuracy: ok")
		}
	}
	rep, err := checker.StrongCompleteness(log, "x", pairs, true, end*3/4)
	if err != nil {
		fmt.Println("strong completeness: FAIL:", err)
		failed = true
	} else {
		fmt.Println("strong completeness: ok")
	}
	if len(rep.DetectionLatency) > 0 {
		fmt.Println("detection latency:", checker.SortedLatencies(rep.DetectionLatency))
	}

	// Figure-1 style timeline for the pair (0, 1).
	if m := ext.Monitor(0, 1); m != nil {
		eat := log.Sessions("eating")
		rows := []trace.TimelineRow{
			{Label: "p.w0", Intervals: eat[trace.SessionKey{Inst: m.Tables()[0].Name(), P: 0}]},
			{Label: "p.w1", Intervals: eat[trace.SessionKey{Inst: m.Tables()[1].Name(), P: 0}]},
			{Label: "q.s0", Intervals: eat[trace.SessionKey{Inst: m.Tables()[0].Name(), P: 1}]},
			{Label: "q.s1", Intervals: eat[trace.SessionKey{Inst: m.Tables()[1].Name(), P: 1}]},
		}
		span := sim.Time(600)
		fmt.Printf("\npair (0,1) eating sessions, final %d ticks:\n", span)
		fmt.Print(trace.Timeline(rows, end-span, end, 72))
	}
	fmt.Printf("\nmessages sent=%d delivered=%d dropped=%d\n",
		k.Counter("msg.sent"), k.Counter("msg.delivered"), k.Counter("msg.dropped"))
	if failed {
		fmt.Fprintln(os.Stderr, "extract: property violations detected")
		os.Exit(1)
	}
}
