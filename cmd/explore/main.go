// Command explore runs bounded-exhaustive schedule exploration over a
// chosen scenario: every assignment of the first K message delays (drawn
// from a two-value alphabet) is enumerated and the scenario's properties
// are checked under each complete run.
//
// Usage:
//
//	explore -scenario reduction -prefix 10
//	explore -scenario central -prefix 12 -fast 1 -slow 40
//
// Scenarios: reduction (pair-monitor invariants + verdict), central
// (perpetual exclusion of the centralized table), mutex (perpetual
// exclusion of the FTME box), consensus (agreement/validity/termination).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/checker"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/perfect"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		scenario = flag.String("scenario", "reduction", "reduction|central|mutex|consensus")
		prefix   = flag.Int("prefix", 10, "number of early messages whose delays are enumerated (2^prefix runs)")
		fast     = flag.Int64("fast", 1, "the fast delay of the alphabet")
		slow     = flag.Int64("slow", 35, "the slow delay of the alphabet")
		tail     = flag.Int64("tail", 3, "delay for messages after the prefix")
	)
	flag.Parse()
	if *prefix < 0 || *prefix > 20 {
		fmt.Fprintln(os.Stderr, "explore: prefix must be in [0, 20] (2^20 runs is already a lot)")
		os.Exit(2)
	}

	sc, err := buildScenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(2)
	}

	choices := []sim.Time{sim.Time(*fast), sim.Time(*slow)}
	fmt.Printf("exploring %s: %d runs (delays {%d,%d} over the first %d messages, tail %d)\n",
		*scenario, 1<<*prefix, *fast, *slow, *prefix, *tail)
	res := explore.Exhaustive(sc, *prefix, choices, sim.Time(*tail))
	fmt.Printf("runs: %d\n", res.Runs)
	if res.Ok() {
		fmt.Println("verdict: every explored schedule satisfied the properties")
		return
	}
	fmt.Printf("verdict: %d failing schedules (showing up to 10):\n", len(res.Failures))
	for _, f := range res.Failures {
		fmt.Println("  ", f)
	}
	os.Exit(1)
}

func buildScenario(name string) (explore.Scenario, error) {
	switch name {
	case "reduction":
		return func(pol sim.DelayPolicy) error {
			k := sim.NewKernel(2, sim.WithSeed(1), sim.WithDelay(pol))
			oracle := detector.Perfect{K: k}
			m := core.NewPairMonitor(k, 0, 1, forks.Factory(oracle, forks.Config{}), "xp")
			var firstViolation error
			m.WatchInvariants(17, 1<<62, func(at sim.Time, what string) {
				if firstViolation == nil {
					firstViolation = fmt.Errorf("t=%d: %s", at, what)
				}
			})
			k.Run(4000)
			if firstViolation != nil {
				return firstViolation
			}
			if m.Suspect() {
				return errors.New("suspecting a correct subject")
			}
			return nil
		}, nil
	case "central":
		return func(pol sim.DelayPolicy) error {
			log := &trace.Log{}
			g := graph.Pair(0, 1)
			k := sim.NewKernel(3, sim.WithSeed(1), sim.WithTracer(log), sim.WithDelay(pol))
			tbl := perfect.New(k, g, "px", 2)
			for _, p := range g.Nodes() {
				dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
					FirstHunger: 2, ThinkMin: 2, ThinkMax: 4, EatMin: 2, EatMax: 5,
				})
			}
			end := k.Run(3000)
			_, err := checker.PerpetualWeakExclusion(log, g, "px", end)
			return err
		}, nil
	case "mutex":
		return func(pol sim.DelayPolicy) error {
			log := &trace.Log{}
			g := graph.Clique(3)
			k := sim.NewKernel(3, sim.WithSeed(1), sim.WithTracer(log), sim.WithDelay(pol))
			tbl := mutex.New(k, g, "mx", detector.Perfect{K: k})
			for _, p := range g.Nodes() {
				dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
					FirstHunger: 2, ThinkMin: 1, ThinkMax: 4, EatMin: 1, EatMax: 4,
				})
			}
			end := k.Run(3000)
			_, err := checker.PerpetualWeakExclusion(log, g, "mx", end)
			return err
		}, nil
	case "consensus":
		return func(pol sim.DelayPolicy) error {
			k := sim.NewKernel(3, sim.WithSeed(1), sim.WithDelay(pol))
			ps := []sim.ProcID{0, 1, 2}
			in := consensus.New(k, ps, "cs", detector.Perfect{K: k})
			for _, p := range ps {
				in.Propose(p, consensus.Value(100+int64(p)))
			}
			k.Run(30000)
			var dec *consensus.Value
			for _, p := range ps {
				v, ok := in.Decided(p)
				if !ok {
					return fmt.Errorf("%d undecided", p)
				}
				if v < 100 || v > 102 {
					return fmt.Errorf("invalid decision %d", v)
				}
				if dec == nil {
					dec = &v
				} else if *dec != v {
					return fmt.Errorf("disagreement %d vs %d", *dec, v)
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("unknown scenario %q", name)
}
