// Command dinersim runs one dining-philosophers simulation and prints a run
// report: eating sessions, exclusion violations, starvation, fairness and
// message counts.
//
// Usage:
//
//	dinersim -topology ring -n 5 -table forks -crash 2@6000 -horizon 40000
//	dinersim -table token -loss 0.3 -dup 0.1 -reorder 16
//
// Tables: forks (WF-◇WX, heartbeat-◇P driven), token (WF-◇WX, circulating
// token), fair (eventually 2-fair), mutex (wait-free ℙWX with the
// model-true T+S stand-in), perfect (centralized ℙWX), trap (adversarial
// WF-◇WX with a mistake era).
//
// -loss/-dup/-reorder weaken the channels to fair-lossy links; when any of
// them is non-zero the reliable transport (internal/transport) is enabled
// automatically so the table still sees the channel axioms it assumes.
// Pass -transport=false to run the table over raw lossy links instead, or
// -transport to add the transport's ack/retransmit machinery to a reliable
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/perfect"
	"repro/internal/dining/token"
	"repro/internal/dining/trap"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
	transportpkg "repro/internal/transport"
)

func main() {
	var (
		topology = flag.String("topology", "ring", "ring|clique|path|star|grid|pair|random")
		n        = flag.Int("n", 5, "number of diners")
		table    = flag.String("table", "forks", "forks|token|fair|mutex|perfect|trap")
		seed     = flag.Int64("seed", 1, "random seed")
		horizon  = flag.Int64("horizon", 40000, "virtual-time horizon")
		gst      = flag.Int64("gst", 800, "global stabilization time of the delay policy")
		crashes  = flag.String("crash", "", "comma list of proc@time, e.g. 2@6000,0@9000")
		era      = flag.Int64("era", 3000, "mistake era for the trap table")
		csvTrace = flag.String("csvtrace", "", "write the full run trace as CSV to this file")

		loss      = flag.Float64("loss", 0, "per-message drop probability on every link, [0, 1)")
		dup       = flag.Float64("dup", 0, "per-message duplication probability, [0, 1]")
		reorder   = flag.Int64("reorder", 0, "extra per-message delay bound (message reordering)")
		transport = flag.Bool("transport", false, "run over the reliable transport (auto-on with link faults)")
	)
	flag.Parse()
	lossy := *loss != 0 || *dup != 0 || *reorder != 0
	useTransport := *transport || lossy
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "transport" {
			useTransport = *transport // explicit flag wins over the auto-on
		}
	})

	g, err := buildGraph(*topology, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinersim:", err)
		os.Exit(2)
	}

	// Centralized tables need an extra coordinator process.
	extra := 0
	if *table == "perfect" || *table == "trap" {
		extra = 1
	}
	log := &trace.Log{}
	k := sim.NewKernel(g.N()+extra,
		sim.WithSeed(*seed),
		sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: sim.Time(*gst), PreMax: 120, PostMax: 8}),
	)

	if useTransport {
		transportpkg.Enable(k, "rt", transportpkg.Config{})
	}
	if lossy {
		plan := sim.LinkPlan{Name: "cli", Drop: *loss, Dup: *dup, ReorderMax: sim.Time(*reorder)}
		if err := plan.Apply(k); err != nil {
			fmt.Fprintln(os.Stderr, "dinersim:", err)
			os.Exit(2)
		}
	}

	// On a lossy network a dropped heartbeat arrives one retransmission
	// timeout late; the oracle's timeout must dominate that or every loss is
	// a false suspicion (see internal/chaos.buildBox).
	hbCfg := detector.HeartbeatConfig{}
	if lossy {
		hbCfg = detector.HeartbeatConfig{Timeout: 240, Bump: 160}
	}

	var tbl dining.Table
	switch *table {
	case "forks":
		oracle := detector.NewHeartbeat(k, "hb", hbCfg)
		tbl = forks.New(k, g, "dine", oracle, forks.Config{})
	case "token":
		oracle := detector.NewHeartbeat(k, "hb", hbCfg)
		tbl = token.New(k, g, "dine", oracle, token.Config{})
	case "fair":
		oracle := detector.NewHeartbeat(k, "hb", hbCfg)
		tbl = fairness.New(k, g, "dine", oracle, fairness.Config{})
	case "mutex":
		// Model-true stand-in for the T+S composition the FTME needs (see
		// the mutex package comment).
		tbl = mutex.New(k, g, "dine", detector.Perfect{K: k})
	case "perfect":
		tbl = perfect.New(k, g, "dine", sim.ProcID(g.N()))
	case "trap":
		tbl = trap.New(k, g, "dine", sim.ProcID(g.N()), sim.Time(*era))
	default:
		fmt.Fprintf(os.Stderr, "dinersim: unknown table %q\n", *table)
		os.Exit(2)
	}

	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 120, EatMin: 5, EatMax: 40,
		})
	}
	for _, spec := range strings.Split(*crashes, ",") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		parts := strings.SplitN(spec, "@", 2)
		p, err1 := strconv.Atoi(parts[0])
		at, err2 := strconv.ParseInt(parts[1], 10, 64)
		if len(parts) != 2 || err1 != nil || err2 != nil || !g.Has(sim.ProcID(p)) {
			fmt.Fprintf(os.Stderr, "dinersim: bad crash spec %q\n", spec)
			os.Exit(2)
		}
		k.CrashAt(sim.ProcID(p), sim.Time(at))
	}

	// Ctrl-C ends the simulation at the current virtual time instead of
	// killing the process: the full report below (and -csvtrace) still
	// covers everything that ran, and the exit status marks the run partial.
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dinersim: interrupted, flushing partial report")
		signal.Stop(sig)
		interrupted.Store(true)
	}()
	end, _ := k.RunUntil(sim.Time(*horizon), func() bool { return interrupted.Load() })

	if interrupted.Load() {
		fmt.Printf("run: table=%s %v seed=%d end=%d (INTERRUPTED before horizon %d)\n\n",
			*table, g, *seed, end, *horizon)
	} else {
		fmt.Printf("run: table=%s %v seed=%d end=%d\n\n", *table, g, *seed, end)
	}
	eat := log.Sessions("eating")
	fmt.Println("diner  meals  crashed")
	for _, p := range g.Nodes() {
		meals := len(eat[trace.SessionKey{Inst: "dine", P: p}])
		crashed := "-"
		if k.Crashed(p) {
			crashed = fmt.Sprintf("t=%d", k.CrashTime(p))
		}
		fmt.Printf("%5d  %5d  %s\n", p, meals, crashed)
	}

	// Violations against the table's contract drive the exit status: perpetual
	// exclusion for the ℙWX tables, an exclusive suffix (convergence by 3/4 of
	// the run) for the ◇WX ones — raw whole-run exclusion counts are reported
	// but are not failures for ◇WX tables, whose early mistakes are allowed.
	failed := false
	rep := checker.Exclusion(log, g, "dine", end)
	fmt.Printf("\nexclusion violations: %d", len(rep.Violations))
	if rep.LastViolation != sim.Never {
		fmt.Printf(" (last ends t=%d)", rep.LastViolation)
	}
	fmt.Println()
	if *table == "perfect" || *table == "mutex" {
		if _, err := checker.PerpetualWeakExclusion(log, g, "dine", end); err != nil {
			fmt.Println("perpetual weak exclusion: FAIL:", err)
			failed = true
		} else {
			fmt.Println("perpetual weak exclusion: ok")
		}
	} else {
		if _, err := checker.EventualWeakExclusion(log, g, "dine", end*3/4, end); err != nil {
			fmt.Println("eventual weak exclusion: FAIL:", err)
			failed = true
		} else {
			fmt.Println("eventual weak exclusion: ok (converged by t=", end*3/4, ")")
		}
	}
	if starved := checker.WaitFreedom(log, "dine", end-3000, end); len(starved) > 0 {
		fmt.Println("STARVATION:")
		for _, s := range starved {
			fmt.Println("  ", s)
		}
		failed = true
	} else {
		fmt.Println("wait-freedom: ok (no starvation)")
	}
	if over := checker.KFairness(log, g, "dine", 2, end/2, end); len(over) > 0 {
		fmt.Printf("suffix overtakes beyond 2: %d (first: %v)\n", len(over), over[0])
	} else {
		fmt.Println("suffix 2-fairness: ok")
	}
	if resp := checker.ResponseTimes(log, "dine", end/2); resp.Served > 0 {
		fmt.Printf("suffix wait (hungry->eating): min=%d mean=%.1f p99=%d max=%d over %d meals\n",
			resp.Min, resp.Mean, resp.P99, resp.Max, resp.Served)
	}
	if len(log.CrashTimes()) > 0 {
		loc := checker.FailureLocality(log, g, "dine", end-3000, end)
		if loc.Locality < 0 {
			fmt.Println("failure locality: none (no correct diner starves)")
		} else {
			fmt.Printf("failure locality: %d (starved at distances %v)\n", loc.Locality, loc.Starved)
		}
	}
	fmt.Printf("\nmessages sent=%d delivered=%d dropped=%d (crash=%d link=%d) steps=%d\n",
		k.Counter("msg.sent"), k.Counter("msg.delivered"), k.Counter("msg.dropped"),
		k.Counter("msg.dropped.crash"), k.Counter("msg.dropped.link"), k.Counter("steps"))
	if useTransport {
		fmt.Printf("transport sent=%d delivered=%d retransmit=%d dup=%d acks=%d\n",
			k.Counter("transport.sent"), k.Counter("transport.delivered"),
			k.Counter("transport.retransmit"), k.Counter("transport.dup"), k.Counter("transport.acks"))
	}

	// Eating timeline of the final stretch.
	var rows []trace.TimelineRow
	for _, p := range g.Nodes() {
		rows = append(rows, trace.TimelineRow{
			Label:     fmt.Sprintf("diner %d", p),
			Intervals: eat[trace.SessionKey{Inst: "dine", P: p}],
		})
	}
	span := sim.Time(2000)
	if end < span {
		span = end
	}
	fmt.Printf("\neating sessions, final %d ticks:\n%s", span, trace.Timeline(rows, end-span, end, 64))

	if *csvTrace != "" {
		f, err := os.Create(*csvTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dinersim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := log.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "dinersim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d records)\n", *csvTrace, log.Len())
	}
	if failed {
		fmt.Fprintln(os.Stderr, "dinersim: property violations detected")
		os.Exit(1)
	}
	if interrupted.Load() {
		fmt.Fprintln(os.Stderr, "dinersim: run interrupted before the horizon")
		os.Exit(130)
	}
}

func buildGraph(topology string, n int, seed int64) (*graph.Graph, error) {
	switch topology {
	case "ring":
		return graph.Ring(n), nil
	case "clique":
		return graph.Clique(n), nil
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "pair":
		return graph.Pair(0, 1), nil
	case "grid":
		r := 2
		for r*r < n {
			r++
		}
		return graph.Grid(r, (n+r-1)/r), nil
	case "random":
		k := sim.NewKernel(1, sim.WithSeed(seed))
		return graph.Random(n, 0.4, k.Rand()), nil
	}
	return nil, fmt.Errorf("unknown topology %q", topology)
}
