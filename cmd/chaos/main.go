// Command chaos runs fault-injection campaigns over the dining boxes: it
// sweeps (box × topology × size × seed × fault plan) under the full checker
// suite with the kernel watchdog armed, delta-debugs any failure down to a
// minimal JSON repro artifact, and exits non-zero if a compliant box
// violated a property.
//
// Usage:
//
//	chaos                                  # default 240-run campaign
//	chaos -boxes forks,buggy -plans eating # focused sweep
//	chaos -shrink -out repros/             # write shrunk artifacts
//	chaos -replay repros/buggy-eating.json # re-execute one artifact
//	chaos -linkplans loss10,loss30,flaky   # lossy-network sweep (transport on)
//	chaos -loss 0.3 -dup 0.1 -reorder 16   # ad-hoc fair-lossy link shape
//	chaos -parallel 1                      # force sequential execution
//	chaos -live -seeds 7                   # live-runtime runs: real goroutines,
//	                                       # wall-clock faults, crash/restart
//	chaos -live -liveplan plan.json        # live runs under a shared link plan
//
// Campaign runs fan out over -parallel workers (default GOMAXPROCS). Runs
// are independent and individually deterministic, and results are aggregated
// in sweep order, so the report — including -v output, failure lists, and
// shrunk repros — is byte-identical at any worker count.
//
// Link faults (-loss/-dup/-reorder or the named -linkplans shapes) weaken the
// channels to fair-lossy links; the reliable transport is enabled
// automatically whenever link faults are present (override with -transport).
//
// Boxes: forks|token|perfect|trap plus "buggy", a planted-bug forks mutant
// that sweeps are expected to catch (its failures do not affect the exit
// status; failing to catch is what -expect-caught turns into an error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/sim"
)

func main() {
	var (
		boxes    = flag.String("boxes", "forks,token,perfect,trap", "comma list of dining boxes (add: buggy)")
		topos    = flag.String("topologies", "ring,clique,star", "comma list of conflict-graph shapes")
		sizes    = flag.String("sizes", "4,6", "comma list of diner counts")
		seeds    = flag.String("seeds", "1,2", "comma list of kernel seeds")
		plans    = flag.String("plans", "none,single,eating,staggered,minority", "comma list of fault-plan shapes")
		horizon  = flag.Int64("horizon", 30000, "virtual-time bound per run")
		shrink   = flag.Bool("shrink", false, "delta-debug each failure to a minimal repro")
		out      = flag.String("out", "", "directory to write shrunk repro artifacts into (implies -shrink)")
		replay   = flag.String("replay", "", "replay one repro artifact instead of running a campaign")
		verbose  = flag.Bool("v", false, "print every run as it finishes")
		expected = flag.Bool("expect-caught", false, "fail if the buggy box is swept but never caught")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for campaign runs (1 = sequential); the report is identical either way")

		liveMode  = flag.Bool("live", false, "run the campaign against live tables (goroutines, wall clock, fault-injecting bus) instead of the simulator")
		liveDur   = flag.Duration("live-duration", 6*time.Second, "wall-clock length of each live run")
		livePlan  = flag.String("liveplan", "", "JSON file with the link shape for -live runs (chaos.LinkSpec; same JSON drives the TCP proxy); empty = built-in drops+partition schedule")
		liveBlack = flag.String("live-blackout", "", "replace the per-process crash with a whole-system blackout, as \"at+gap\" durations (e.g. 1500ms+500ms): crash every process at once, restart the full table together")

		loss      = flag.Float64("loss", 0, "per-message drop probability on every link, [0, 1)")
		dup       = flag.Float64("dup", 0, "per-message duplication probability, [0, 1]")
		reorder   = flag.Int64("reorder", 0, "extra per-message delay bound (message reordering)")
		linkplans = flag.String("linkplans", "", "comma list of named link shapes (none|loss10|loss30|dup|reorder|flaky)")
		transport = flag.Bool("transport", true, "run boxes over the reliable transport when link faults are on")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(replayArtifact(*replay))
	}

	if *liveMode {
		os.Exit(liveCampaign(split(*topos), int64List(*seeds), split(*sizes), *liveDur, *livePlan, *liveBlack))
	}

	c := chaos.Campaign{
		Boxes:      split(*boxes),
		Topologies: split(*topos),
		Seeds:      int64List(*seeds),
		Plans:      split(*plans),
		Horizon:    sim.Time(*horizon),
		Delays:     []chaos.DelaySpec{{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8}},
		Shrink:     *shrink || *out != "",
		Parallel:   *parallel,
	}
	for _, s := range split(*sizes) {
		n, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: bad size %q\n", s)
			os.Exit(2)
		}
		c.Sizes = append(c.Sizes, n)
	}

	// Link faults: named shapes and/or one ad-hoc shape from -loss/-dup/-reorder.
	for _, name := range split(*linkplans) {
		ls, err := chaos.NamedLinkSpec(name, c.Horizon)
		if err != nil {
			errorf(err)
			os.Exit(2)
		}
		c.Links = append(c.Links, ls)
	}
	if *loss != 0 || *dup != 0 || *reorder != 0 {
		c.Links = append(c.Links, &chaos.LinkSpec{Drop: *loss, Dup: *dup, Reorder: sim.Time(*reorder)})
	}
	anyLossy := false
	for _, ls := range c.Links {
		anyLossy = anyLossy || ls != nil
	}
	c.Transport = anyLossy && *transport

	// Ctrl-C stops the sweep but not the program: in-flight runs finish,
	// the partial report and any shrunk repros are still flushed, and the
	// exit status marks the campaign as incomplete.
	interrupt := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "chaos: interrupted, finishing in-flight runs and flushing the partial report")
		signal.Stop(sig) // a second Ctrl-C kills the process the default way
		close(interrupt)
	}()
	c.Interrupt = interrupt

	if *verbose {
		c.Progress = func(r *chaos.Result) {
			status := "ok"
			if r.Failed() {
				status = "FAIL [" + r.Category + "] " + r.First()
			}
			fmt.Printf("%-70s %s\n", r.Spec.ID(), status)
		}
	}

	rep := c.Run()
	fmt.Print(rep.Render())

	if *out != "" && len(rep.Repros) > 0 {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		for i, r := range rep.Repros {
			path := filepath.Join(*out, fmt.Sprintf("repro-%02d-%s.json", i, r.Category))
			if err := r.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "chaos:", err)
				os.Exit(1)
			}
			fmt.Printf("repro: %s (%s, %d shrink runs)\n", path, r.Spec.ID(), r.ShrinkRuns)
		}
	}

	exit := 0
	if !rep.CompliantClean() {
		fmt.Fprintln(os.Stderr, "chaos: a compliant box violated a property")
		exit = 1
	}
	if *expected && !rep.Interrupted() {
		if st := rep.ByBox["buggy"]; st == nil || st.Failed == 0 {
			fmt.Fprintln(os.Stderr, "chaos: the planted-bug box was not caught")
			exit = 1
		}
	}
	if rep.Interrupted() {
		fmt.Fprintf(os.Stderr, "chaos: campaign interrupted: %d of %d runs skipped\n",
			rep.Skipped, rep.Runs+rep.Skipped)
		exit = 130 // conventional 128+SIGINT: partial evidence is not a pass
	}
	os.Exit(exit)
}

// liveCampaign runs the live-runtime leg: one run per (topology, size, seed)
// with a seeded fault schedule — steady drops, one partition window, one
// crash/restart — against a real table over the fault-injecting bus, judged
// by the shared checkers. SIGINT follows the same convention as simulator
// campaigns: the partial report is flushed and the exit status is 130.
func liveCampaign(topos []string, seeds []int64, sizes []string, dur time.Duration, planFile, blackoutSpec string) int {
	var blackout *chaos.LiveBlackout
	if blackoutSpec != "" {
		var err error
		if blackout, err = parseBlackout(blackoutSpec); err != nil {
			errorf(err)
			return 2
		}
	}
	var links *chaos.LinkSpec
	if planFile != "" {
		raw, err := os.ReadFile(planFile)
		if err != nil {
			errorf(err)
			return 2
		}
		links = &chaos.LinkSpec{}
		if err := json.Unmarshal(raw, links); err != nil {
			errorf(fmt.Errorf("chaos: bad -liveplan %s: %w", planFile, err))
			return 2
		}
	}

	var c chaos.LiveCampaign
	for _, topo := range topos {
		for _, size := range sizes {
			n, err := strconv.Atoi(size)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: bad size %q\n", size)
				return 2
			}
			for _, seed := range seeds {
				spec := chaos.LiveSpec{
					Topology: topo, N: n, Seed: seed, Duration: dur,
					Links: links,
					Crashes: []chaos.LiveCrash{
						{P: sim.ProcID(n / 2), At: dur / 4, RestartAfter: dur / 12},
					},
				}
				if blackout != nil {
					spec.Crashes = nil
					spec.Blackout = blackout
				}
				if links == nil {
					// The built-in schedule: background drops plus one
					// partition window cutting off the lower half of the
					// table early in the run (ticks of the default 500µs).
					side := make([]sim.ProcID, n/2)
					for i := range side {
						side[i] = sim.ProcID(i)
					}
					spec.Links = &chaos.LinkSpec{
						Drop: 0.10,
						Windows: []chaos.WindowSpec{
							{Start: 1000, End: 2000, Drop: 1, Side: side},
						},
					}
				}
				c.Specs = append(c.Specs, spec)
			}
		}
	}

	interrupt := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "chaos: interrupted, flushing the partial live report")
		signal.Stop(sig)
		close(interrupt)
	}()
	c.Interrupt = interrupt
	c.Progress = func(r *chaos.LiveResult) {
		status := "ok"
		if r.Failed() {
			status = "FAIL " + r.First()
		}
		fmt.Printf("%-60s %s\n", r.Spec.ID(), status)
	}

	rep := c.Run()
	fmt.Print(rep.Render())
	if !rep.Clean() {
		fmt.Fprintln(os.Stderr, "chaos: a live run violated a property")
		return 1
	}
	if rep.Interrupted() {
		fmt.Fprintln(os.Stderr, "chaos: live campaign interrupted: partial evidence is not a pass")
		return 130
	}
	return 0
}

// errorf prefixes "chaos:" only when the error is not already package-tagged.
func errorf(err error) {
	if strings.HasPrefix(err.Error(), "chaos:") {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Fprintln(os.Stderr, "chaos:", err)
}

func replayArtifact(path string) int {
	r, err := chaos.LoadRepro(path)
	if err != nil {
		errorf(err)
		return 2
	}
	res, err := r.Replay()
	if err != nil {
		errorf(err)
		return 1
	}
	fmt.Printf("replayed %s: [%s] %s\n", r.Spec.ID(), res.Category, res.First())
	return 0
}

func split(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func int64List(s string) []int64 {
	var out []int64
	for _, f := range split(s) {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: bad seed %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// parseBlackout parses the -live-blackout "at+gap" shape, e.g. "1500ms+500ms".
func parseBlackout(s string) (*chaos.LiveBlackout, error) {
	at, gap, ok := strings.Cut(s, "+")
	if !ok {
		return nil, fmt.Errorf("chaos: -live-blackout %q is not \"at+gap\" (e.g. 1500ms+500ms)", s)
	}
	atD, err := time.ParseDuration(at)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad -live-blackout at %q: %w", at, err)
	}
	gapD, err := time.ParseDuration(gap)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad -live-blackout gap %q: %w", gap, err)
	}
	return &chaos.LiveBlackout{At: atD, RestartAfter: gapD}, nil
}
