package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lockproto"
	"repro/internal/wal"
)

// writeLedger populates one WAL directory with the given records through
// the real store, so the fixture is byte-identical to what a service shard
// would leave behind.
func writeLedger(t *testing.T, dir string, recs []lockproto.Rec) {
	t.Helper()
	pol, err := wal.ParsePolicy("always")
	if err != nil {
		t.Fatal(err)
	}
	store, _, err := wal.Open(dir, wal.Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := store.Append(r.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardedDataDir drives the tool against a two-table data directory:
// table-0 carries a clean acquire→grant→release history, table-1 a
// double-grant. The inspection must audit both shards, report table-0
// clean, attribute the violation to table-1, and exit 2 overall.
func TestRunShardedDataDir(t *testing.T) {
	parent := t.TempDir()
	k := lockproto.Key{Diner: 3, ID: "a"}
	writeLedger(t, wal.TableDir(parent, 0), []lockproto.Rec{
		{K: lockproto.RecAcquire, D: k.Diner, I: k.ID, T: 1},
		{K: lockproto.RecGrant, D: k.Diner, I: k.ID, T: 2},
		{K: lockproto.RecRelease, D: k.Diner, I: k.ID, T: 3},
	})
	writeLedger(t, wal.TableDir(parent, 1), []lockproto.Rec{
		{K: lockproto.RecAcquire, D: 6, I: "b", T: 1},
		{K: lockproto.RecGrant, D: 6, I: "b", T: 2},
		{K: lockproto.RecGrant, D: 6, I: "b", T: 4},
	})

	var out, errOut strings.Builder
	code := run(&out, &errOut, false, true, parent)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"2 tables", "== table-0 ==", "== table-1 ==", "verify: ledger OK — no double grants"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "table-1: ledger violation") ||
		!strings.Contains(errOut.String(), "double grant") {
		t.Fatalf("stderr did not attribute the violation to table-1:\n%s", errOut.String())
	}

	// Both shards clean: the whole directory verifies with status 0.
	clean := t.TempDir()
	for i := 0; i < 2; i++ {
		writeLedger(t, wal.TableDir(clean, i), []lockproto.Rec{
			{K: lockproto.RecAcquire, D: i, I: "x", T: 1},
			{K: lockproto.RecGrant, D: i, I: "x", T: 2},
			{K: lockproto.RecRelease, D: i, I: "x", T: 3},
		})
	}
	out.Reset()
	errOut.Reset()
	if code := run(&out, &errOut, false, true, clean); code != 0 {
		t.Fatalf("clean sharded dir: exit %d\nstderr:\n%s", code, errOut.String())
	}
}

// TestRunFlatDataDir pins the historical single-directory behavior: a flat
// layout is inspected as one ledger, with no table headers in the output.
func TestRunFlatDataDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	writeLedger(t, dir, []lockproto.Rec{
		{K: lockproto.RecAcquire, D: 0, I: "f", T: 1},
		{K: lockproto.RecGrant, D: 0, I: "f", T: 2},
	})
	var out, errOut strings.Builder
	if code := run(&out, &errOut, false, true, dir); code != 0 {
		t.Fatalf("flat dir: exit %d\nstderr:\n%s", code, errOut.String())
	}
	if strings.Contains(out.String(), "== table-") {
		t.Fatalf("flat layout grew table headers:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "verify: ledger OK") {
		t.Fatalf("missing verify verdict:\n%s", out.String())
	}
}
