// Command walinspect prints and verifies a dineserve WAL+snapshot directory
// without modifying it. The plain form renders what recovery would load —
// which snapshot wins, which segments replay, and where any torn tail sits;
// -v additionally dumps every record. With -verify it replays the journal
// through the same code path dineserve recovery uses and audits the grant
// ledger: any double-grant in the persisted history exits with status 2, so
// scripted crash harnesses can assert the on-disk state is provably safe.
//
// A sharded data directory (dineserve -tables N writes table-<i>/
// subdirectories under one parent) is inspected table by table: every
// shard's ledger is rendered and audited independently, and a violation in
// any one of them fails the whole inspection with status 2.
//
// Usage: walinspect [-v] [-verify] <data-dir>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lockproto"
	"repro/internal/wal"
)

func main() {
	var (
		verbose = flag.Bool("v", false, "dump every replayed record")
		verify  = flag.Bool("verify", false, "replay the journal and audit the grant ledger")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: walinspect [-v] [-verify] <data-dir>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}
	os.Exit(run(os.Stdout, os.Stderr, *verbose, *verify, flag.Arg(0)))
}

// run is the whole program behind the flag parsing, returning the exit
// status so tests can drive it against fixture directories.
func run(out, errOut io.Writer, verbose, verify bool, dir string) int {
	dirs, err := wal.TableDirs(dir)
	if err != nil {
		fmt.Fprintf(errOut, "walinspect: %v\n", err)
		return 1
	}
	if dirs == nil {
		// Flat single-table layout: inspect the directory itself.
		return inspectOne(out, errOut, verbose, verify, dir, "")
	}
	// Sharded layout: every table is its own ledger; the worst verdict
	// wins (a single dirty shard makes the whole directory unsafe to
	// recover from).
	fmt.Fprintf(out, "%s: %d tables\n", dir, len(dirs))
	worst := 0
	for _, td := range dirs {
		fmt.Fprintf(out, "== %s ==\n", filepath.Base(td))
		if code := inspectOne(out, errOut, verbose, verify, td, filepath.Base(td)+": "); code > worst {
			worst = code
		}
	}
	return worst
}

// inspectOne renders and (optionally) audits a single WAL directory. prefix
// tags error lines with the shard they came from; it is empty for the flat
// layout, keeping that output byte-identical to the pre-sharding tool.
func inspectOne(out, errOut io.Writer, verbose, verify bool, dir, prefix string) int {
	rep, err := wal.Inspect(dir)
	if err != nil {
		fmt.Fprintf(errOut, "walinspect: %s%v\n", prefix, err)
		return 1
	}
	fmt.Fprint(out, rep.Render(verbose))
	if !rep.Valid() {
		fmt.Fprintf(out, "note: %d torn bytes — recovery truncates them, history before the tear is intact\n", rep.TornBytes)
	}
	if !verify {
		return 0
	}

	// Lease 0 (never expire) keeps the audit about the recorded history, not
	// about how stale it is.
	rec, err := lockproto.Replay(0, rep.Snapshot, rep.Records)
	if err != nil {
		fmt.Fprintf(errOut, "walinspect: %sreplay: %v\n", prefix, err)
		return 2
	}
	granted := 0
	for _, s := range rec.Live {
		if s.Granted {
			granted++
		}
	}
	fmt.Fprintf(out, "verify: %d live sessions (%d granted), %d fork edges, watermark t=%d\n",
		len(rec.Live), granted, len(rec.Forks), rec.Watermark)
	for _, k := range []string{lockproto.RecAcquire, lockproto.RecGrant, lockproto.RecRelease, lockproto.RecExpire, lockproto.RecAbort, lockproto.RecFork, lockproto.RecTick} {
		if n := rec.Counts[k]; n > 0 {
			fmt.Fprintf(out, "verify:   %-6s %d\n", k, n)
		}
	}
	if len(rec.Violations) > 0 {
		for _, v := range rec.Violations {
			fmt.Fprintf(errOut, "walinspect: %sledger violation: %s\n", prefix, v)
		}
		return 2
	}
	fmt.Fprintln(out, "verify: ledger OK — no double grants")
	return 0
}
