// Command walinspect prints and verifies a dineserve WAL+snapshot directory
// without modifying it. The plain form renders what recovery would load —
// which snapshot wins, which segments replay, and where any torn tail sits;
// -v additionally dumps every record. With -verify it replays the journal
// through the same code path dineserve recovery uses and audits the grant
// ledger: any double-grant in the persisted history exits with status 2, so
// scripted crash harnesses can assert the on-disk state is provably safe.
//
// Usage: walinspect [-v] [-verify] <data-dir>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lockproto"
	"repro/internal/wal"
)

func main() {
	var (
		verbose = flag.Bool("v", false, "dump every replayed record")
		verify  = flag.Bool("verify", false, "replay the journal and audit the grant ledger")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: walinspect [-v] [-verify] <data-dir>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}

	rep, err := wal.Inspect(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "walinspect: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render(*verbose))
	if !rep.Valid() {
		fmt.Printf("note: %d torn bytes — recovery truncates them, history before the tear is intact\n", rep.TornBytes)
	}
	if !*verify {
		return
	}

	// Lease 0 (never expire) keeps the audit about the recorded history, not
	// about how stale it is.
	rec, err := lockproto.Replay(0, rep.Snapshot, rep.Records)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walinspect: replay: %v\n", err)
		os.Exit(2)
	}
	granted := 0
	for _, s := range rec.Live {
		if s.Granted {
			granted++
		}
	}
	fmt.Printf("verify: %d live sessions (%d granted), %d fork edges, watermark t=%d\n",
		len(rec.Live), granted, len(rec.Forks), rec.Watermark)
	for _, k := range []string{lockproto.RecAcquire, lockproto.RecGrant, lockproto.RecRelease, lockproto.RecExpire, lockproto.RecAbort, lockproto.RecFork, lockproto.RecTick} {
		if n := rec.Counts[k]; n > 0 {
			fmt.Printf("verify:   %-6s %d\n", k, n)
		}
	}
	if len(rec.Violations) > 0 {
		for _, v := range rec.Violations {
			fmt.Fprintf(os.Stderr, "walinspect: ledger violation: %s\n", v)
		}
		os.Exit(2)
	}
	fmt.Println("verify: ledger OK — no double grants")
}
