// Command paperbench regenerates every experiment in EXPERIMENTS.md: the
// Figure 1 timeline and the measured counterparts of the paper's theorems,
// lemmas, counterexample, and discussion-section claims.
//
// Usage:
//
//	paperbench [-run E1,E3] [-seed N] [-quick] [-parallel N]
//
// Experiments fan out over -parallel workers (default GOMAXPROCS), both
// across experiments and inside each experiment's seed/config sweep; each
// table's output is buffered and flushed in experiment order, so the printed
// report is byte-identical at any worker count.
//
// Exit status 1 if any experiment observed a property violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/experiment"
	"repro/internal/par"
	"repro/internal/sim"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "base random seed")
	quick := flag.Bool("quick", false, "smaller seed sets and sizes")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiments (1 = sequential); output is identical either way")
	flag.Parse()
	experiment.Workers = *parallel

	seeds := []int64{*seed, *seed + 1, *seed + 2}
	sizes := []int{2, 3, 4}
	horizons := []sim.Time{10000, 20000, 40000}
	gsts := []sim.Time{400, 1500, 4000}
	if *quick {
		seeds = seeds[:1]
		sizes = []int{2, 3}
		horizons = horizons[:2]
		gsts = gsts[:2]
	}

	all := []struct {
		id string
		fn func() *experiment.Table
	}{
		{"E1", func() *experiment.Table { return experiment.E1Figure1(*seed) }},
		{"E2", func() *experiment.Table { return experiment.E2Completeness(seeds, sizes) }},
		{"E3", func() *experiment.Table { return experiment.E3Accuracy(seeds, gsts) }},
		{"E4", func() *experiment.Table { return experiment.E4Invariants(seeds) }},
		{"E5", func() *experiment.Table { return experiment.E5Progress(seeds) }},
		{"E6", func() *experiment.Table { return experiment.E6Flawed(*seed, horizons) }},
		{"E7", func() *experiment.Table { return experiment.E7Fairness(seeds) }},
		{"E8", func() *experiment.Table { return experiment.E8Trusting(seeds[:min(2, len(seeds))]) }},
		{"E9", func() *experiment.Table { return experiment.E9Sufficiency(seeds[:min(2, len(seeds))]) }},
		{"E10", func() *experiment.Table { return experiment.E10Applications(*seed) }},
		{"E11", func() *experiment.Table { return experiment.E11Scaling(*seed, sizes) }},
		{"E12", func() *experiment.Table { return experiment.E12Downstream(seeds[:min(2, len(seeds))]) }},
		{"E13", func() *experiment.Table { return experiment.E13Ablations(*seed) }},
		{"E14", func() *experiment.Table { return experiment.E14Locality(*seed) }},
		{"E15", func() *experiment.Table { return experiment.E15RoundTrip(seeds[:min(2, len(seeds))]) }},
		{"E16", func() *experiment.Table { return experiment.E16ChaosSoak(*seed) }},
		{"E17", func() *experiment.Table { return experiment.E17LossyLinks(*seed) }},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	var selected []func() *experiment.Table
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		selected = append(selected, e.fn)
	}

	// Experiments run concurrently; each table is rendered on its worker and
	// the buffered output flushed in experiment order by the ordered consumer.
	failed := false
	par.MapOrdered(*parallel, len(selected), func(i int) *experiment.Table {
		return selected[i]()
	}, func(i int, tbl *experiment.Table) {
		fmt.Println(tbl.Render())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tbl); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				failed = true
			}
		}
		if !tbl.Ok() {
			failed = true
		}
	})
	if failed {
		fmt.Fprintln(os.Stderr, "paperbench: at least one experiment failed")
		os.Exit(1)
	}
}

func writeCSV(dir string, tbl *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(tbl.ID)+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
