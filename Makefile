# Standard verification pipeline. `make check` is the everything gate:
# vet, build, race-enabled tests, and short passes over every fuzz target.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz bench chaos

check: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short passes over the existing fuzz targets; each runs on the corpus plus
# $(FUZZTIME) of new inputs.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzConsensusSchedules -fuzztime=$(FUZZTIME) ./internal/consensus
	$(GO) test -run=^$$ -fuzz=FuzzMutexSchedules -fuzztime=$(FUZZTIME) ./internal/mutex
	$(GO) test -run=^$$ -fuzz=FuzzPairMonitorSchedules -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzForksSchedules -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzLinkPlanValidate -fuzztime=$(FUZZTIME) ./internal/sim

bench:
	$(GO) test -bench=. -benchmem

# The default chaos campaign: 240 runs over the real dining boxes, exit 1 on
# any property violation.
chaos:
	$(GO) run ./cmd/chaos
