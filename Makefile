# Standard verification pipeline. `make check` is the everything gate:
# vet, build, race-enabled tests, and short passes over every fuzz target.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz bench bench-serve chaos chaos-live serve-smoke serve-crash

check: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short passes over the existing fuzz targets; each runs on the corpus plus
# $(FUZZTIME) of new inputs.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzConsensusSchedules -fuzztime=$(FUZZTIME) ./internal/consensus
	$(GO) test -run=^$$ -fuzz=FuzzMutexSchedules -fuzztime=$(FUZZTIME) ./internal/mutex
	$(GO) test -run=^$$ -fuzz=FuzzPairMonitorSchedules -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzForksSchedules -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzLinkPlanValidate -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=^$$ -fuzz=FuzzLockprotoDedup -fuzztime=$(FUZZTIME) ./internal/lockproto
	$(GO) test -run=^$$ -fuzz=FuzzWireCodecEquivalence -fuzztime=$(FUZZTIME) ./internal/lockproto
	$(GO) test -run=^$$ -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/wal

# Performance trajectory: run the substrate micro-benchmarks and the E*
# experiment benches, and convert each set to a JSON artifact via
# cmd/bench2json. The previously committed artifact is embedded as the
# baseline, so every BENCH_*.json carries its own before/after deltas
# (ns/op, allocs/op, deliveries/op, campaign wall-clock + speedup). CI
# archives both files per commit.
KERNEL_BENCH := BenchmarkKernel|BenchmarkForksTable|BenchmarkPairMonitor|BenchmarkHeartbeatOracle|BenchmarkCheckerExclusion
EXPERIMENT_BENCH := BenchmarkE[0-9]|BenchmarkCampaignParallel

bench:
	$(GO) test -run '^$$' -bench '$(KERNEL_BENCH)' -benchmem . \
		| $(GO) run ./cmd/bench2json -baseline BENCH_kernel.json -o BENCH_kernel.json
	$(GO) test -run '^$$' -bench '$(EXPERIMENT_BENCH)' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/bench2json -baseline BENCH_experiments.json -o BENCH_experiments.json

# Service-path trajectory: codec/flush/registry micro-benchmarks (with their
# encoding/json baselines), the in-process loopback service benchmarks, and
# a real dineload run against dineserve, all folded into BENCH_serve.json.
# CLIENTS/DURATION are overridable.
bench-serve:
	$(GO) build -o bin/dineserve ./cmd/dineserve
	$(GO) build -o bin/dineload ./cmd/dineload
	bash scripts/bench_serve.sh

# The default chaos campaign: 240 runs over the real dining boxes, exit 1 on
# any property violation.
chaos:
	$(GO) run ./cmd/chaos

# The live chaos campaign: seeded fault schedules (drops, one partition
# window, one crash/restart) against real tables — once in-process over the
# fault-injecting bus, once as dineserve behind the chaos TCP proxy under a
# self-healing dineload — with clean checker verdicts required of both.
chaos-live:
	$(GO) build -o bin/chaos ./cmd/chaos
	$(GO) build -o bin/chaosproxy ./cmd/chaosproxy
	$(GO) build -o bin/dineserve ./cmd/dineserve
	$(GO) build -o bin/dineload ./cmd/dineload
	bash scripts/chaos_live.sh

# End-to-end smoke of the live service: boot dineserve on an ephemeral
# loopback port, run a 64-client dineload burst, SIGINT the server, and
# require a clean drain plus a clean ◇WX-exclusion verdict over the whole
# run's trace. CLIENTS/DURATION are overridable.
serve-smoke:
	$(GO) build -o bin/dineserve ./cmd/dineserve
	$(GO) build -o bin/dineload ./cmd/dineload
	bash scripts/serve_smoke.sh

# Crash-recovery acceptance: the in-process whole-table blackout campaign,
# then dineserve with a WAL kill -9'd mid-load and restarted from its data
# directory (clients must see zero errors and zero double grants, the
# ledger must verify), then a torn-WAL-tail boot. CLIENTS/DURATION are
# overridable.
serve-crash:
	$(GO) build -o bin/chaos ./cmd/chaos
	$(GO) build -o bin/dineserve ./cmd/dineserve
	$(GO) build -o bin/dineload ./cmd/dineload
	$(GO) build -o bin/walinspect ./cmd/walinspect
	bash scripts/serve_crash.sh
